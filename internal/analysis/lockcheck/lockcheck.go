// Package lockcheck enforces the repository's lock discipline over the
// driver's CFG dataflow core. The serving stack's correctness argument
// (bit-identical responses, SIGTERM drain that terminates) depends on
// three lock invariants that per-statement AST checks cannot see,
// because each one is a property of *paths*, not statements:
//
//  1. Lock ordering. Every site that acquires a sync.Mutex/RWMutex
//     while another is held contributes an edge to a per-package
//     lock-ordering graph; a cycle in that graph is a latent deadlock
//     (two goroutines taking the locks in opposite orders), and
//     re-acquiring a lock already held on the same receiver deadlocks
//     immediately. Both are flagged.
//
//  2. No blocking under a lock. A lock held across a channel send or
//     receive, a select, sync.WaitGroup.Wait, time.Sleep, or a call
//     into the worker-pool surface (Pool.Submit/Close,
//     parallel.RunTasks/ForEach) stalls every other goroutine needing
//     that lock for as long as the blocked goroutine waits — the exact
//     shape that turns a full batch queue into a server-wide stall.
//     sync.Cond.Wait is exempt: it atomically releases its mutex.
//
//  3. Guarded fields. A struct field annotated
//     //mtlint:guardedby <lockField> [writes] may only be accessed at
//     program points where the sibling lock is held on the *same base
//     expression* (g.pending requires g.mu). The must-hold set is
//     computed by forward dataflow with intersection join, so an
//     access is only accepted when *every* path to it holds the lock.
//     The `writes` variant guards writes only — the copy-on-write
//     discipline, where lock-free readers load an immutable snapshot
//     and only publication requires the writer lock. Helper methods
//     whose contract is "caller holds the lock" declare it with
//     //mtlint:locked <lockField>, which both seeds their entry state
//     and makes every call site prove it holds the receiver's lock.
//
// The dataflow is per-function, but calls are not opaque: the driver's
// program-wide lock-effect summaries thread a callee's *net* effect
// through each call site — a helper that returns with a parameter's
// lock acquired extends the held set (so an acquiring helper followed
// by a //mtlint:locked call checks clean), one that releases shrinks
// it (so the locked call is flagged again). //mtlint:locked
// preconditions resolve program-wide too, so cross-package call sites
// of an annotated method are held to the same contract. A deferred
// Unlock (direct or through a releasing helper) keeps the lock held to
// function exit (the dominant idiom); lock identities are matched by
// expression spelling (g.mu), which is exact for the receiver-field
// idiom this repository uses and conservative for aliases. Suppress
// deliberate violations with
// //mtlint:allow lockheld|lockorder|guardedby <reason>.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the lock-discipline check.
var Analyzer = &driver.Analyzer{
	Name: "lockcheck",
	Doc:  "flag lock-ordering cycles, locks held across blocking calls, and //mtlint:guardedby field accesses without their lock",
	Run:  run,
}

// Directive names.
const (
	GuardedByMarker = "guardedby" // field: //mtlint:guardedby <lockField> [writes]
	LockedMarker    = "locked"    // method: //mtlint:locked <lockField>
)

// Allow check names.
const (
	AllowHeld      = "lockheld"
	AllowOrder     = "lockorder"
	AllowGuardedBy = "guardedby"
)

// lockID identifies one lock.
type lockID struct {
	expr  string // spelling at the use site: "g.mu", "mu"
	class string // package-stable identity for the ordering graph: "(group).mu"
}

// held is one element of the must-hold set.
type held struct {
	id   lockID
	excl bool // Lock (true) vs RLock (false)
}

// state is the sorted must-hold set; treated as immutable.
type state []held

func (s state) find(expr string) int {
	for i, h := range s {
		if h.id.expr == expr {
			return i
		}
	}
	return -1
}

func (s state) with(h held) state {
	if i := s.find(h.id.expr); i >= 0 {
		if s[i].excl == h.excl {
			return s
		}
		next := append(state(nil), s...)
		next[i].excl = h.excl
		return next
	}
	next := append(append(state(nil), s...), h)
	sort.Slice(next, func(a, b int) bool { return next[a].id.expr < next[b].id.expr })
	return next
}

func (s state) without(expr string) state {
	i := s.find(expr)
	if i < 0 {
		return s
	}
	next := append(append(state(nil), s[:i]...), s[i+1:]...)
	return next
}

func joinStates(a, b state) state {
	var out state
	for _, h := range a {
		if j := b.find(h.id.expr); j >= 0 {
			m := h
			m.excl = h.excl && b[j].excl
			out = append(out, m)
		}
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// guardSpec is one parsed //mtlint:guardedby annotation.
type guardSpec struct {
	lockField  string
	writesOnly bool
}

// orderEdge records "to acquired while from held".
type orderEdge struct {
	from, to string // lock classes
	pos      token.Pos
}

// checker carries the per-package analysis.
type checker struct {
	pass    *driver.Pass
	info    *types.Info
	guards  map[*types.Var]guardSpec // annotated fields
	locked  map[*types.Func]string   // method -> lock field the caller must hold
	methods map[*types.Func]*ast.FuncDecl
	edges   []orderEdge
}

func run(pass *driver.Pass) error {
	c := &checker{
		pass:    pass,
		info:    pass.TypesInfo(),
		guards:  map[*types.Var]guardSpec{},
		locked:  map[*types.Func]string{},
		methods: map[*types.Func]*ast.FuncDecl{},
	}
	c.collectAnnotations()
	for _, fb := range driver.PackageFunctions(pass.Pkg) {
		c.checkFunc(fb)
	}
	c.reportOrderCycles()
	return nil
}

// collectAnnotations gathers //mtlint:guardedby field specs and
// //mtlint:locked method preconditions.
func (c *checker) collectAnnotations() {
	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args, ok := fieldDirective(field, GuardedByMarker)
				if !ok {
					continue
				}
				parts := strings.Fields(args)
				if len(parts) == 0 {
					c.pass.Reportf(field.Pos(), "//mtlint:guardedby needs a sibling lock field name")
					continue
				}
				spec := guardSpec{lockField: parts[0]}
				if len(parts) > 1 && parts[1] == "writes" {
					spec.writesOnly = true
				}
				if !structHasField(st, spec.lockField) {
					c.pass.Reportf(field.Pos(), "//mtlint:guardedby names %q, which is not a field of this struct", spec.lockField)
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.info.Defs[name].(*types.Var); ok {
						c.guards[v] = spec
					}
				}
			}
			return true
		})
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := c.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.methods[fn] = fd
			if args, ok := driver.FuncDirective(fd, LockedMarker); ok {
				fields := strings.Fields(args)
				if len(fields) == 0 || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
					c.pass.Reportf(fd.Pos(), "//mtlint:locked needs a lock field name and a named receiver")
					continue
				}
				c.locked[fn] = fields[0]
			}
		}
	}
}

// fieldDirective finds an //mtlint:<name> directive in a struct
// field's doc or trailing comment.
func fieldDirective(field *ast.Field, name string) (args string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if !strings.HasPrefix(cm.Text, "//mtlint:") {
				continue
			}
			rest := strings.TrimPrefix(cm.Text, "//mtlint:")
			n, a, _ := strings.Cut(rest, " ")
			if n == name {
				return strings.TrimSpace(a), true
			}
		}
	}
	return "", false
}

func structHasField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// checkFunc runs the held-set dataflow over one function body and
// reports violations with per-atom precision.
func (c *checker) checkFunc(fb driver.FuncBody) {
	cfg := driver.NewCFG(fb.Body)
	entry := c.entryState(fb)
	transfer := func(b *driver.Block, in state) state {
		s := in
		for _, a := range b.Atoms {
			s = c.atom(a, s, false)
		}
		return s
	}
	in := driver.Forward(cfg, entry, joinStates, equalStates, transfer)
	for _, b := range cfg.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		for _, a := range b.Atoms {
			s = c.atom(a, s, true)
		}
	}
}

// entryState seeds the held set of a //mtlint:locked method with its
// declared precondition.
func (c *checker) entryState(fb driver.FuncBody) state {
	if fb.Decl == nil {
		return nil
	}
	fn, ok := c.info.Defs[fb.Decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	lockField, ok := c.locked[fn]
	if !ok {
		return nil
	}
	recv := fb.Decl.Recv.List[0].Names[0].Name
	expr := recv + "." + lockField
	return state{held{id: lockID{expr: expr, class: c.classOfRecvField(fb.Decl, lockField)}, excl: true}}
}

// classOfRecvField builds the ordering-graph identity of a receiver
// field lock: "(T).field".
func (c *checker) classOfRecvField(fd *ast.FuncDecl, field string) string {
	fn, ok := c.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "local:" + field
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "local:" + field
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "(" + n.Obj().Name() + ")." + field
	}
	return "local:" + field
}

// atom interprets one CFG atom, threading the held set through it.
// With report set, violations are diagnosed and ordering edges
// recorded; the fixpoint pass runs with report false.
func (c *checker) atom(a ast.Node, s state, report bool) state {
	switch n := a.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock runs at exit: the lock stays held for the
		// rest of the function, which is exactly what guardedby wants.
		// Other deferred calls execute after every atom we analyze, so
		// their blocking behavior is not "held across" anything here;
		// evaluate only the argument expressions (they run now).
		if c.unlockTarget(n.Call) == "" {
			for _, arg := range n.Call.Args {
				s = c.expr(arg, false, s, report)
			}
		}
		return s
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			s = c.expr(r, false, s, report)
		}
		for _, l := range n.Lhs {
			s = c.expr(l, true, s, report)
		}
		return s
	case *ast.IncDecStmt:
		return c.expr(n.X, true, s, report)
	case *ast.SendStmt:
		s = c.expr(n.Chan, false, s, report)
		s = c.expr(n.Value, false, s, report)
		c.reportBlocking(n.Pos(), "a channel send", s, report)
		return s
	case *ast.ExprStmt:
		return c.expr(n.X, false, s, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			s = c.expr(r, false, s, report)
		}
		return s
	case *ast.GoStmt:
		// The spawned call runs on another goroutine; only argument
		// evaluation happens here.
		for _, arg := range n.Call.Args {
			s = c.expr(arg, false, s, report)
		}
		return s
	case *ast.RangeStmt:
		s = c.expr(n.X, false, s, report)
		if n.Key != nil {
			s = c.expr(n.Key, true, s, report)
		}
		if n.Value != nil {
			s = c.expr(n.Value, true, s, report)
		}
		// Ranging over a channel blocks on every iteration.
		if tv, ok := c.info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.reportBlocking(n.Pos(), "a channel range", s, report)
			}
		}
		return s
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s = c.expr(v, false, s, report)
					}
				}
			}
		}
		return s
	case ast.Expr:
		return c.expr(n, false, s, report)
	default:
		return s
	}
}

// expr interprets one expression; write reports whether the value of e
// itself is being stored to.
func (c *checker) expr(e ast.Expr, write bool, s state, report bool) state {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.expr(n.X, write, s, report)
	case *ast.CallExpr:
		return c.call(n, s, report)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			s = c.expr(n.X, false, s, report)
			c.reportBlocking(n.Pos(), "a channel receive", s, report)
			return s
		}
		return c.expr(n.X, false, s, report)
	case *ast.SelectorExpr:
		c.checkGuardedAccess(n, write, s, report)
		return c.expr(n.X, false, s, report)
	case *ast.IndexExpr:
		s = c.expr(n.X, write, s, report)
		return c.expr(n.Index, false, s, report)
	case *ast.IndexListExpr:
		s = c.expr(n.X, false, s, report)
		for _, i := range n.Indices {
			s = c.expr(i, false, s, report)
		}
		return s
	case *ast.SliceExpr:
		s = c.expr(n.X, false, s, report)
		for _, sub := range []ast.Expr{n.Low, n.High, n.Max} {
			if sub != nil {
				s = c.expr(sub, false, s, report)
			}
		}
		return s
	case *ast.StarExpr:
		return c.expr(n.X, false, s, report)
	case *ast.BinaryExpr:
		s = c.expr(n.X, false, s, report)
		return c.expr(n.Y, false, s, report)
	case *ast.KeyValueExpr:
		s = c.expr(n.Key, false, s, report)
		return c.expr(n.Value, false, s, report)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			s = c.expr(el, false, s, report)
		}
		return s
	case *ast.TypeAssertExpr:
		return c.expr(n.X, false, s, report)
	case *ast.FuncLit:
		return s // its body is its own CFG
	default:
		return s
	}
}

// call interprets a call expression: lock transitions, blocking
// lexicon, locked-method preconditions, atomic read/write
// classification, builtins.
func (c *checker) call(call *ast.CallExpr, s state, report bool) state {
	// Builtins: delete writes its map, append reads its operands (the
	// write surfaces at the enclosing assignment's LHS).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
			for i, arg := range call.Args {
				s = c.expr(arg, id.Name == "delete" && i == 0, s, report)
			}
			return s
		}
	}

	sel, _ := call.Fun.(*ast.SelectorExpr)
	full := c.calleeFullName(call)

	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(sync.Locker).Lock":
		return c.acquire(sel, true, s, report)
	case "(*sync.RWMutex).RLock":
		return c.acquire(sel, false, s, report)
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock", "(sync.Locker).Unlock":
		if expr := c.unlockTarget(call); expr != "" {
			return s.without(expr)
		}
		return s
	case "(*sync.Cond).Wait":
		// Atomically releases and reacquires its mutex: exempt from the
		// blocking rule, and the mutex is held again afterwards.
		return s
	case "(*sync.WaitGroup).Wait":
		c.reportBlocking(call.Pos(), "sync.WaitGroup.Wait", s, report)
	}

	// Atomic value methods classify the receiver access for guardedby.
	if sel != nil && c.isAtomicMethod(sel) {
		write := atomicWriteMethods[sel.Sel.Name]
		if base, ok := sel.X.(*ast.SelectorExpr); ok {
			c.checkGuardedAccess(base, write, s, report)
			s = c.expr(base.X, false, s, report)
		} else {
			s = c.expr(sel.X, false, s, report)
		}
		for _, arg := range call.Args {
			s = c.expr(arg, false, s, report)
		}
		return s
	}

	// Blocking lexicon beyond the fully-qualified sync cases: the
	// worker-pool surface (by type and method name, so fixtures and
	// future pools match) and time.Sleep.
	if c.isBlockingCall(call, full) {
		c.reportBlocking(call.Pos(), callLabel(call), s, report)
	}

	// //mtlint:locked callee: the call site must hold the receiver's
	// lock. The annotation resolves program-wide, so cross-package call
	// sites of an annotated method are checked too.
	if sel != nil {
		if fn, ok := c.info.Uses[sel.Sel].(*types.Func); ok {
			lockField, isLocked := c.locked[fn]
			if !isLocked && c.pass.Prog != nil {
				lockField, isLocked = c.pass.Prog.LockedPrecondition(fn)
			}
			if isLocked {
				want := types.ExprString(sel.X) + "." + lockField
				if i := s.find(want); i < 0 || !s[i].excl {
					if report && !driver.Allowed(c.pass.Pkg, call.Pos(), AllowGuardedBy) {
						c.pass.Reportf(call.Pos(), "call to %s requires %s held (//mtlint:locked); acquire it first", sel.Sel.Name, want)
					}
				}
			}
		}
	}

	s = c.expr(call.Fun, false, s, report)
	for _, arg := range call.Args {
		s = c.expr(arg, false, s, report)
	}
	return c.applyCalleeEffects(call, s, report)
}

// applyCalleeEffects threads a callee's net lock effects (from the
// program-wide summary cache) through the call site: a helper that
// returns with a parameter's lock acquired extends the held set, one
// that releases shrinks it. Receiver and parameter indices map back to
// the caller's argument expressions, so `g.lockFor()` on an acquiring
// helper leaves "g.mu" held.
func (c *checker) applyCalleeEffects(call *ast.CallExpr, s state, report bool) state {
	prog := c.pass.Prog
	if prog == nil {
		return s
	}
	fn := driver.CalleeOf(c.info, call)
	if fn == nil {
		return s
	}
	for _, eff := range prog.LockEffectsOf(fn) {
		arg := prog.CallArg(call, fn, eff.Param)
		if arg == nil {
			continue
		}
		id := c.fieldLockID(arg, eff.Field)
		if !eff.Acquire {
			s = s.without(id.expr)
			continue
		}
		if i := s.find(id.expr); i >= 0 {
			if report && !driver.Allowed(c.pass.Pkg, call.Pos(), AllowHeld) {
				c.pass.Reportf(call.Pos(), "call to %s re-acquires %s, which is already held; a second acquire of a sync mutex deadlocks", callLabel(call), id.expr)
			}
			continue
		}
		if report {
			for _, h := range s {
				c.edges = append(c.edges, orderEdge{from: h.id.class, to: id.class, pos: call.Pos()})
			}
		}
		s = s.with(held{id: id, excl: eff.Excl})
	}
	return s
}

// fieldLockID derives the held-set identity of <arg>.<field>, the lock
// a summarized callee effect lands on at this call site.
func (c *checker) fieldLockID(arg ast.Expr, field string) lockID {
	arg = ast.Unparen(arg)
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ue.X
	}
	expr := types.ExprString(arg) + "." + field
	class := "local:" + expr
	if tv, ok := c.info.Types[arg]; ok {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			class = "(" + n.Obj().Name() + ")." + field
		}
	}
	return lockID{expr: expr, class: class}
}

// acquire processes a Lock/RLock call: self-acquire and ordering
// edges, then the new held set.
func (c *checker) acquire(sel *ast.SelectorExpr, excl bool, s state, report bool) state {
	if sel == nil {
		return s
	}
	id := c.lockIDOf(sel.X)
	if i := s.find(id.expr); i >= 0 {
		if report && !driver.Allowed(c.pass.Pkg, sel.Pos(), AllowHeld) {
			c.pass.Reportf(sel.Pos(), "lock %s acquired while already held; a second acquire of a sync mutex deadlocks", id.expr)
		}
		return s
	}
	if report {
		for _, h := range s {
			c.edges = append(c.edges, orderEdge{from: h.id.class, to: id.class, pos: sel.Pos()})
		}
	}
	return s.with(held{id: id, excl: excl})
}

// unlockTarget returns the held-set key an Unlock call releases, or ""
// when the call is not an unlock on a selector.
func (c *checker) unlockTarget(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch c.calleeFullName(call) {
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock", "(sync.Locker).Unlock":
		return c.lockIDOf(sel.X).expr
	}
	return ""
}

// lockIDOf derives the identity of the lock value expression (the
// receiver of Lock/Unlock).
func (c *checker) lockIDOf(lockExpr ast.Expr) lockID {
	expr := types.ExprString(lockExpr)
	class := "local:" + expr
	switch le := lockExpr.(type) {
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[le]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				class = "(" + n.Obj().Name() + ")." + le.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := c.info.Uses[le]; obj != nil && obj.Parent() == obj.Pkg().Scope() {
			class = "pkgvar:" + le.Name
		} else if obj != nil {
			class = fmt.Sprintf("local:%s@%d", le.Name, obj.Pos())
		}
	}
	return lockID{expr: expr, class: class}
}

// calleeFullName resolves a call's target to its types.Func full name
// ("(*sync.Mutex).Lock"), or "".
func (c *checker) calleeFullName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// atomicWriteMethods classifies sync/atomic value methods.
var atomicWriteMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
	"Add": true, "And": true, "Or": true,
	"Load": false,
}

func (c *checker) isAtomicMethod(sel *ast.SelectorExpr) bool {
	if _, known := atomicWriteMethods[sel.Sel.Name]; !known {
		return false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// isBlockingCall matches the name-based blocking lexicon: worker-pool
// entry points and time.Sleep.
func (c *checker) isBlockingCall(call *ast.CallExpr, full string) bool {
	if full == "time.Sleep" {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Pool.Submit / Pool.Close on any type named Pool: submitting
		// can contend on the pool's own lock, Close blocks for a full
		// drain.
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Name() == "Pool" {
			return sel.Sel.Name == "Submit" || sel.Sel.Name == "Close"
		}
		return false
	}
	// Package-level scheduler entry points in a package named parallel.
	if fn.Pkg() != nil && fn.Pkg().Name() == "parallel" {
		return fn.Name() == "RunTasks" || fn.Name() == "ForEach"
	}
	return false
}

func callLabel(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}

// reportBlocking diagnoses every lock held across a blocking point.
func (c *checker) reportBlocking(pos token.Pos, what string, s state, report bool) {
	if !report || len(s) == 0 {
		return
	}
	if driver.Allowed(c.pass.Pkg, pos, AllowHeld) {
		return
	}
	for _, h := range s {
		c.pass.Reportf(pos, "lock %s held across %s; release it first or annotate //mtlint:allow lockheld <reason>", h.id.expr, what)
	}
}

// checkGuardedAccess verifies one selector access against its
// guardedby annotation, if any.
func (c *checker) checkGuardedAccess(sel *ast.SelectorExpr, write bool, s state, report bool) {
	if !report {
		return
	}
	selection, ok := c.info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, guarded := c.guards[field]
	if !guarded {
		return
	}
	if spec.writesOnly && !write {
		return
	}
	want := types.ExprString(sel.X) + "." + spec.lockField
	i := s.find(want)
	heldOK := i >= 0 && (!write || s[i].excl)
	if heldOK {
		return
	}
	if driver.Allowed(c.pass.Pkg, sel.Pos(), AllowGuardedBy) {
		return
	}
	kind := "read"
	if write {
		kind = "write"
	}
	suffix := ""
	if write && i >= 0 {
		suffix = " exclusively; only RLock is held"
	}
	c.pass.Reportf(sel.Pos(), "%s of %s.%s requires %s held%s (//mtlint:guardedby)", kind, types.ExprString(sel.X), field.Name(), want, suffix)
}

// reportOrderCycles diagnoses every acquire edge that participates in
// a cycle of the package's lock-ordering graph.
func (c *checker) reportOrderCycles() {
	if len(c.edges) == 0 {
		return
	}
	adj := map[string]map[string]bool{}
	for _, e := range c.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			//mtlint:allow maprange successor scan; reachability is order-insensitive
			for next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	reported := map[string]bool{}
	for _, e := range c.edges {
		key := e.from + "->" + e.to
		if reported[key] || !reaches(e.to, e.from) {
			continue
		}
		reported[key] = true
		if driver.Allowed(c.pass.Pkg, e.pos, AllowOrder) {
			continue
		}
		c.pass.Reportf(e.pos, "lock ordering cycle: %s acquired while %s held, and the reverse order exists in this package; pick one global order", e.to, e.from)
	}
}
