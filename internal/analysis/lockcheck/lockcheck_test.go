package lockcheck_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/lockcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", lockcheck.Analyzer)
}
