package uarch

import "fmt"

// Category labels the SPEC suite a benchmark belongs to (paper §3.4:
// integer benchmarks stress the integer register file, floating point
// benchmarks the FP register file).
type Category int

const (
	SPECint Category = iota
	SPECfp
)

func (c Category) String() string {
	if c == SPECfp {
		return "SPECfp"
	}
	return "SPECint"
}

// Profile characterizes one benchmark's steady behaviour: its
// instruction mix, achievable instruction-level parallelism, memory
// behaviour, and phase structure. Profiles are the distilled equivalent
// of the paper's SimPoint-selected 500M-instruction traces.
type Profile struct {
	Name     string
	Category Category

	// Instruction mix fractions; IntOps+FPOps+Loads+Stores+Branches
	// should sum to ~1.
	IntOps   float64
	FPOps    float64
	Loads    float64
	Stores   float64
	Branches float64

	// ILP is the dependence-limited parallelism the program exposes
	// (instructions per cycle achievable with infinite resources).
	ILP float64

	// Memory behaviour, expressed per memory access.
	L1MissRate float64 // fraction of loads/stores missing L1D
	L2MissRate float64 // fraction of L1 misses also missing L2
	MLP        float64 // memory-level parallelism: overlapping misses

	// Branch behaviour.
	Mispredict float64 // mispredictions per branch

	// PowerFactor scales the utilization-derived switching activity of
	// the program's instructions (data switching factors, datapath width
	// usage). It decorrelates power from IPC: real benchmark suites
	// contain hot-but-slow programs (twolf) and fast-but-cool ones
	// (sixtrack's tight FP loops). Zero means 1.0.
	PowerFactor float64

	// Phase structure: activity is modulated sinusoidally by
	// ±PhaseAmplitude with the given period in seconds. Benchmarks the
	// paper lists as lacking a steady temperature (Table 1b) have large
	// amplitudes; stable ones have small or zero amplitude.
	PhaseAmplitude float64
	PhasePeriod    float64 // seconds
	PhasePhase     float64 // initial phase offset, radians

	// NoiseAmplitude adds deterministic pseudo-random per-interval
	// jitter (fraction of activity).
	NoiseAmplitude float64

	// Seed decorrelates the jitter streams of different benchmarks.
	Seed uint64
}

// Validate checks profile plausibility.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("uarch: profile with empty name")
	}
	mix := p.IntOps + p.FPOps + p.Loads + p.Stores + p.Branches
	if mix < 0.95 || mix > 1.05 {
		return fmt.Errorf("uarch: profile %s instruction mix sums to %g, want ≈1", p.Name, mix)
	}
	for name, v := range map[string]float64{
		"IntOps": p.IntOps, "FPOps": p.FPOps, "Loads": p.Loads,
		"Stores": p.Stores, "Branches": p.Branches,
		"L1MissRate": p.L1MissRate, "L2MissRate": p.L2MissRate,
		"Mispredict": p.Mispredict, "PhaseAmplitude": p.PhaseAmplitude,
		"NoiseAmplitude": p.NoiseAmplitude,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("uarch: profile %s: %s = %g outside [0,1]", p.Name, name, v)
		}
	}
	if p.ILP <= 0 {
		return fmt.Errorf("uarch: profile %s: ILP must be positive", p.Name)
	}
	if p.MLP < 1 {
		return fmt.Errorf("uarch: profile %s: MLP must be ≥ 1", p.Name)
	}
	if p.PhaseAmplitude > 0 && p.PhasePeriod <= 0 {
		return fmt.Errorf("uarch: profile %s: phase amplitude without period", p.Name)
	}
	if p.PowerFactor < 0 || p.PowerFactor > 3 {
		return fmt.Errorf("uarch: profile %s: PowerFactor %g outside [0,3]", p.Name, p.PowerFactor)
	}
	return nil
}

// powerFactor returns the effective switching factor (zero value → 1).
func (p Profile) powerFactor() float64 {
	if p.PowerFactor == 0 { //mtlint:allow floatcmp exact zero is the unset-profile sentinel
		return 1
	}
	return p.PowerFactor
}

// AnalyticIPC computes the sustained instructions-per-cycle for the
// profile on the configured core: the bottleneck-limited ideal IPC
// degraded by memory-stall and branch-misprediction CPI components.
func AnalyticIPC(cfg Config, p Profile) float64 {
	ideal := p.ILP
	if w := float64(cfg.DecodeWidth); w < ideal {
		ideal = w
	}
	// Structural per-unit limits: a unit class used by fraction f of
	// instructions with n copies caps IPC at n/f.
	limit := func(n int, frac float64) float64 {
		if frac <= 0 {
			return 1e9
		}
		return float64(n) / frac
	}
	for _, l := range []float64{
		limit(cfg.NumFXU, p.IntOps),
		limit(cfg.NumFPU, p.FPOps),
		limit(cfg.NumLSU, p.Loads+p.Stores),
		limit(cfg.NumBXU, p.Branches),
	} {
		if l < ideal {
			ideal = l
		}
	}
	baseCPI := 1 / ideal

	memAccess := p.Loads + p.Stores
	l2CPI := memAccess * p.L1MissRate * float64(cfg.L2Latency) * 0.5 // L1 misses partly hidden
	memCPI := memAccess * p.L1MissRate * p.L2MissRate * float64(cfg.MemLatency) / p.MLP
	brCPI := p.Branches * p.Mispredict * float64(cfg.PipelineDepth)

	return 1 / (baseCPI + l2CPI + memCPI + brCPI)
}
