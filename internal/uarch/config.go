// Package uarch models the out-of-order processor core of paper Table 3
// and generates per-interval activity factors for every floorplan unit —
// the role Turandot plays in the paper's toolflow (§3.1). Rather than
// simulating individual instructions, it uses an analytic bottleneck
// model: sustainable IPC is the minimum of the dependence-limited ILP,
// the machine width, and per-unit structural limits, degraded by memory
// and branch stall components. This is sufficient because the thermal
// study consumes only per-100K-cycle activity averages.
package uarch

import "fmt"

// Config captures the modeled CPU of paper Table 3.
type Config struct {
	ClockHz float64 // 3.6 GHz nominal

	DecodeWidth int // instructions decoded/renamed per cycle
	IssueWidth  int // instructions issued per cycle

	NumFXU int // fixed-point units (2)
	NumFPU int // floating-point units (2)
	NumLSU int // load/store units (2)
	NumBXU int // branch units (1)

	MemIntQueue int // reservation stations, mem/int (2x20)
	FPQueue     int // reservation stations, fp (2x5)

	GPR int // physical general purpose registers (120)
	FPR int // physical fp registers (108)
	SPR int // physical special purpose registers (90)

	L1DLatency int // cycles (1)
	L2Latency  int // cycles (9)
	MemLatency int // cycles (100)

	PipelineDepth int // branch misprediction penalty, cycles

	SampleCycles int // activity sampling interval (100,000 cycles ≈ 28 µs)
}

// DefaultConfig returns the per-core configuration of paper Table 3.
func DefaultConfig() Config {
	return Config{
		ClockHz:       3.6e9,
		DecodeWidth:   4,
		IssueWidth:    5,
		NumFXU:        2,
		NumFPU:        2,
		NumLSU:        2,
		NumBXU:        1,
		MemIntQueue:   40,
		FPQueue:       10,
		GPR:           120,
		FPR:           108,
		SPR:           90,
		L1DLatency:    1,
		L2Latency:     9,
		MemLatency:    100,
		PipelineDepth: 14,
		SampleCycles:  100000,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("uarch: ClockHz must be positive")
	}
	for name, v := range map[string]int{
		"DecodeWidth": c.DecodeWidth, "IssueWidth": c.IssueWidth,
		"NumFXU": c.NumFXU, "NumFPU": c.NumFPU, "NumLSU": c.NumLSU, "NumBXU": c.NumBXU,
		"MemIntQueue": c.MemIntQueue, "FPQueue": c.FPQueue,
		"GPR": c.GPR, "FPR": c.FPR, "SPR": c.SPR,
		"L2Latency": c.L2Latency, "MemLatency": c.MemLatency,
		"PipelineDepth": c.PipelineDepth, "SampleCycles": c.SampleCycles,
	} {
		if v <= 0 {
			return fmt.Errorf("uarch: %s must be positive", name)
		}
	}
	if c.L1DLatency < 1 {
		return fmt.Errorf("uarch: L1DLatency must be at least 1")
	}
	return nil
}

// SampleSeconds returns the wall-clock duration of one activity sample
// interval at nominal frequency.
func (c Config) SampleSeconds() float64 {
	return float64(c.SampleCycles) / c.ClockHz
}
