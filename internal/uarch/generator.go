package uarch

import (
	"math"

	"multitherm/internal/floorplan"
)

// NumUnitKinds sizes per-kind activity arrays.
const NumUnitKinds = int(floorplan.KindL2) + 1

// Sample is the activity record for one 100K-cycle interval: how many
// instructions retired and the dynamic activity factor (0..1, fraction
// of the unit's maximum switching power) for each unit kind.
type Sample struct {
	Instructions float64
	Activity     [NumUnitKinds]float64
}

// ActivityFor returns the activity factor for a unit kind.
func (s *Sample) ActivityFor(k floorplan.UnitKind) float64 {
	return s.Activity[int(k)]
}

// Generator produces deterministic per-interval activity samples for
// one benchmark on one core configuration. Sample(n) is a pure function
// of the interval index, so traces can be regenerated, looped (§3.3:
// "that trace is restarted at the beginning"), and windowed at will.
type Generator struct {
	cfg  Config
	prof Profile
	ipc0 float64
	base [NumUnitKinds]float64 // activity at nominal IPC
}

// clockActivityFloor is the unit activity attributable to the local
// clock network while the core runs — present even when a unit is
// underused, gone when the core is clock-gated by stop-go.
const clockActivityFloor = 0.12

// NewGenerator validates the inputs and precomputes nominal activities.
func NewGenerator(cfg Config, prof Profile) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, prof: prof, ipc0: AnalyticIPC(cfg, prof)}
	g.base = g.unitActivities(g.ipc0)
	return g, nil
}

// NominalIPC returns the benchmark's unmodulated IPC on this core.
func (g *Generator) NominalIPC() float64 { return g.ipc0 }

// Profile returns the generator's benchmark profile.
func (g *Generator) Profile() Profile { return g.prof }

// Config returns the generator's core configuration.
func (g *Generator) Config() Config { return g.cfg }

// unitActivities derives per-unit activity factors from a given IPC.
// Each factor is utilization = demand/capacity, lifted by the clock
// floor and saturated at 1.
func (g *Generator) unitActivities(ipc float64) [NumUnitKinds]float64 {
	p := g.prof
	c := g.cfg
	memAccess := p.Loads + p.Stores
	// Fraction of memory traffic attributable to FP data.
	fpShare := 0.0
	if p.FPOps+p.IntOps > 0 {
		fpShare = p.FPOps / (p.FPOps + p.IntOps)
	}

	pf := p.powerFactor()
	var a [NumUnitKinds]float64
	set := func(k floorplan.UnitKind, util float64) {
		util *= pf
		if util < 0 {
			util = 0
		}
		v := clockActivityFloor + (1-clockActivityFloor)*util
		if v > 1 {
			v = 1
		}
		a[int(k)] = v
	}

	set(floorplan.KindFXU, ipc*(p.IntOps+0.3*memAccess)/float64(c.NumFXU))
	set(floorplan.KindFPU, ipc*p.FPOps/float64(c.NumFPU))
	set(floorplan.KindLSU, ipc*memAccess/float64(c.NumLSU))
	set(floorplan.KindBXU, ipc*p.Branches/float64(c.NumBXU))

	// Register file activity counts read/write port traffic. Integer
	// registers serve int ops, address generation, and branch inputs;
	// FP registers serve FP ops and the FP share of memory traffic.
	const rfPorts = 6
	irfTraffic := 2.2*p.IntOps + 1.2*memAccess*(1-fpShare) + 0.6*memAccess*fpShare + 0.8*p.Branches + 0.3*p.FPOps
	set(floorplan.KindIntRegFile, ipc*irfTraffic/rfPorts*1.2)
	fprfTraffic := 2.2*p.FPOps + 1.0*memAccess*fpShare
	set(floorplan.KindFPRegFile, ipc*fprfTraffic/rfPorts*1.2)

	set(floorplan.KindL1I, ipc/float64(c.DecodeWidth))
	set(floorplan.KindL1D, ipc*memAccess/float64(c.NumLSU))
	set(floorplan.KindBPred, ipc*p.Branches*1.2)
	set(floorplan.KindRename, ipc/float64(c.DecodeWidth))
	set(floorplan.KindIssueQ, ipc/float64(c.IssueWidth)*1.2)
	// Shared L2: activity from this core's miss traffic; the simulator
	// combines multiple cores' contributions.
	set(floorplan.KindL2, ipc*memAccess*p.L1MissRate*5)
	set(floorplan.KindOther, 0)
	return a
}

// Modulation returns the activity multiplier for interval n: the phase
// sinusoid plus deterministic jitter.
func (g *Generator) Modulation(n int64) float64 {
	p := g.prof
	m := 1.0
	if p.PhaseAmplitude > 0 && p.PhasePeriod > 0 {
		t := float64(n) * g.cfg.SampleSeconds()
		m += p.PhaseAmplitude * math.Sin(2*math.Pi*t/p.PhasePeriod+p.PhasePhase)
	}
	if p.NoiseAmplitude > 0 {
		m += p.NoiseAmplitude * jitter(p.Seed, uint64(n))
	}
	if m < 0.05 {
		m = 0.05
	}
	return m
}

// Sample returns the activity record for interval n (a pure function).
func (g *Generator) Sample(n int64) Sample {
	m := g.Modulation(n)
	var s Sample
	ipc := g.ipc0 * m
	s.Instructions = ipc * float64(g.cfg.SampleCycles)
	// Scale utilization parts of the precomputed activities; the clock
	// floor does not scale with load.
	for i, v := range g.base {
		util := (v - clockActivityFloor) / (1 - clockActivityFloor)
		scaled := clockActivityFloor + (1-clockActivityFloor)*util*m
		if scaled > 1 {
			scaled = 1
		}
		if scaled < 0 {
			scaled = 0
		}
		s.Activity[i] = scaled
	}
	return s
}

// jitter maps (seed, n) to a deterministic value in [−1, 1] using a
// splitmix64-style mix.
func jitter(seed, n uint64) float64 {
	x := seed ^ (n * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x)/float64(math.MaxUint64)*2 - 1
}
