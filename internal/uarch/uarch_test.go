package uarch

import (
	"math"
	"testing"
	"testing/quick"

	"multitherm/internal/floorplan"
)

func intProfile() Profile {
	return Profile{
		Name: "inttest", Category: SPECint,
		IntOps: 0.45, Loads: 0.22, Stores: 0.12, Branches: 0.18, FPOps: 0.03,
		ILP: 2.5, L1MissRate: 0.03, L2MissRate: 0.1, MLP: 2, Mispredict: 0.06,
	}
}

func fpProfile() Profile {
	return Profile{
		Name: "fptest", Category: SPECfp,
		IntOps: 0.12, Loads: 0.28, Stores: 0.10, Branches: 0.05, FPOps: 0.45,
		ILP: 3.0, L1MissRate: 0.04, L2MissRate: 0.2, MLP: 3, Mispredict: 0.02,
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateCatchesZeros(t *testing.T) {
	c := DefaultConfig()
	c.NumFXU = 0
	if err := c.Validate(); err == nil {
		t.Error("zero FXUs accepted")
	}
	c = DefaultConfig()
	c.ClockHz = -1
	if err := c.Validate(); err == nil {
		t.Error("negative clock accepted")
	}
}

func TestSampleSeconds(t *testing.T) {
	c := DefaultConfig()
	want := 100000.0 / 3.6e9
	if got := c.SampleSeconds(); math.Abs(got-want) > 1e-15 {
		t.Errorf("SampleSeconds = %v, want %v (≈27.8 µs, the paper's 28 µs interval)", got, want)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := intProfile().Validate(); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
	p := intProfile()
	p.IntOps = 0.9 // mix no longer sums to 1
	if err := p.Validate(); err == nil {
		t.Error("bad mix accepted")
	}
	p = intProfile()
	p.ILP = 0
	if err := p.Validate(); err == nil {
		t.Error("zero ILP accepted")
	}
	p = intProfile()
	p.MLP = 0.5
	if err := p.Validate(); err == nil {
		t.Error("sub-1 MLP accepted")
	}
	p = intProfile()
	p.PhaseAmplitude = 0.3
	p.PhasePeriod = 0
	if err := p.Validate(); err == nil {
		t.Error("phase amplitude without period accepted")
	}
}

func TestAnalyticIPCRange(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range []Profile{intProfile(), fpProfile()} {
		ipc := AnalyticIPC(cfg, p)
		if ipc <= 0.1 || ipc > float64(cfg.DecodeWidth) {
			t.Errorf("%s: IPC %v outside plausible range", p.Name, ipc)
		}
	}
}

func TestAnalyticIPCMemoryBoundIsLow(t *testing.T) {
	// An mcf-like profile (huge L2 miss rate) must come out well under
	// a compute-bound profile — the paper's observation that mcf is by
	// far the coolest benchmark because it is memory-bound.
	cfg := DefaultConfig()
	memBound := intProfile()
	memBound.L1MissRate = 0.25
	memBound.L2MissRate = 0.6
	memBound.MLP = 1.5
	if ipcM, ipcC := AnalyticIPC(cfg, memBound), AnalyticIPC(cfg, intProfile()); ipcM > ipcC/2 {
		t.Errorf("memory-bound IPC %v not well below compute-bound %v", ipcM, ipcC)
	}
}

func TestAnalyticIPCStructuralLimit(t *testing.T) {
	// A branch-saturated profile is capped by the single BXU.
	cfg := DefaultConfig()
	p := intProfile()
	p.Branches = 0.5
	p.IntOps = 0.3
	p.Loads = 0.15
	p.Stores = 0.05
	p.Mispredict = 0
	p.L1MissRate = 0
	ipc := AnalyticIPC(cfg, p)
	if limit := float64(cfg.NumBXU) / p.Branches; ipc > limit+1e-9 {
		t.Errorf("IPC %v exceeds BXU structural limit %v", ipc, limit)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g, err := NewGenerator(DefaultConfig(), intProfile())
	if err != nil {
		t.Fatal(err)
	}
	a := g.Sample(1234)
	b := g.Sample(1234)
	if a != b {
		t.Error("Sample is not a pure function of the interval index")
	}
}

func TestGeneratorActivityBounds(t *testing.T) {
	for _, prof := range []Profile{intProfile(), fpProfile()} {
		prof.PhaseAmplitude = 0.4
		prof.PhasePeriod = 0.05
		prof.NoiseAmplitude = 0.1
		g, err := NewGenerator(DefaultConfig(), prof)
		if err != nil {
			t.Fatal(err)
		}
		for n := int64(0); n < 5000; n += 7 {
			s := g.Sample(n)
			if s.Instructions < 0 {
				t.Fatalf("negative instruction count at %d", n)
			}
			for k, v := range s.Activity {
				if v < 0 || v > 1 {
					t.Fatalf("%s: activity[%d] = %v outside [0,1] at interval %d",
						prof.Name, k, v, n)
				}
			}
		}
	}
}

func TestIntVsFPHotspotSeparation(t *testing.T) {
	// §3.4: integer benchmarks must stress the integer register file
	// more than the FP register file, and vice versa. This separation
	// is what gives migration its leverage.
	cfg := DefaultConfig()
	gi, err := NewGenerator(cfg, intProfile())
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewGenerator(cfg, fpProfile())
	if err != nil {
		t.Fatal(err)
	}
	si, sf := gi.Sample(0), gf.Sample(0)
	if si.ActivityFor(floorplan.KindIntRegFile) <= si.ActivityFor(floorplan.KindFPRegFile) {
		t.Errorf("int benchmark: IRF %v <= FPRF %v",
			si.ActivityFor(floorplan.KindIntRegFile), si.ActivityFor(floorplan.KindFPRegFile))
	}
	if sf.ActivityFor(floorplan.KindFPRegFile) <= sf.ActivityFor(floorplan.KindIntRegFile) {
		t.Errorf("fp benchmark: FPRF %v <= IRF %v",
			sf.ActivityFor(floorplan.KindFPRegFile), sf.ActivityFor(floorplan.KindIntRegFile))
	}
}

func TestPhaseModulationMovesActivity(t *testing.T) {
	prof := fpProfile()
	prof.PhaseAmplitude = 0.3
	prof.PhasePeriod = 0.01 // 10 ms
	g, err := NewGenerator(DefaultConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for n := int64(0); n < 720; n++ { // two full periods
		v := g.Sample(n).Instructions
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	ratio := max / min
	if ratio < 1.5 {
		t.Errorf("phase modulation too weak: max/min = %v", ratio)
	}
}

func TestModulationClampsPositive(t *testing.T) {
	prof := intProfile()
	prof.PhaseAmplitude = 1.0 // pathological
	prof.PhasePeriod = 0.001
	prof.NoiseAmplitude = 0.5
	g, err := NewGenerator(DefaultConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n int64) bool {
		if n < 0 {
			n = -n
		}
		return g.Modulation(n) >= 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJitterRangeAndVariety(t *testing.T) {
	seen := map[bool]int{}
	for i := uint64(0); i < 1000; i++ {
		v := jitter(42, i)
		if v < -1 || v > 1 {
			t.Fatalf("jitter %v outside [-1,1]", v)
		}
		seen[v > 0]++
	}
	if seen[true] < 300 || seen[false] < 300 {
		t.Errorf("jitter badly skewed: %v", seen)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	bad := intProfile()
	bad.ILP = -1
	if _, err := NewGenerator(DefaultConfig(), bad); err == nil {
		t.Error("invalid profile accepted")
	}
	badCfg := DefaultConfig()
	badCfg.SampleCycles = 0
	if _, err := NewGenerator(badCfg, intProfile()); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPowerFactorScalesActivityNotIPC(t *testing.T) {
	lo := intProfile()
	lo.PowerFactor = 0.6
	hi := intProfile()
	hi.PowerFactor = 1.4
	gl, err := NewGenerator(DefaultConfig(), lo)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := NewGenerator(DefaultConfig(), hi)
	if err != nil {
		t.Fatal(err)
	}
	if gl.NominalIPC() != gh.NominalIPC() {
		t.Errorf("PowerFactor changed IPC: %v vs %v", gl.NominalIPC(), gh.NominalIPC())
	}
	sl, sh := gl.Sample(0), gh.Sample(0)
	if sl.Instructions != sh.Instructions {
		t.Error("PowerFactor changed instruction counts")
	}
	if sh.ActivityFor(floorplan.KindIntRegFile) <= sl.ActivityFor(floorplan.KindIntRegFile) {
		t.Errorf("higher PowerFactor did not raise activity: %v vs %v",
			sh.ActivityFor(floorplan.KindIntRegFile), sl.ActivityFor(floorplan.KindIntRegFile))
	}
}

func TestPowerFactorZeroMeansOne(t *testing.T) {
	a := intProfile() // zero-valued PowerFactor
	b := intProfile()
	b.PowerFactor = 1.0
	ga, _ := NewGenerator(DefaultConfig(), a)
	gb, _ := NewGenerator(DefaultConfig(), b)
	if ga.Sample(3) != gb.Sample(3) {
		t.Error("PowerFactor zero-value does not behave as 1.0")
	}
}

func TestPowerFactorValidation(t *testing.T) {
	p := intProfile()
	p.PowerFactor = 5
	if err := p.Validate(); err == nil {
		t.Error("absurd PowerFactor accepted")
	}
	p.PowerFactor = -1
	if err := p.Validate(); err == nil {
		t.Error("negative PowerFactor accepted")
	}
}

func TestActivitySaturatesAtOne(t *testing.T) {
	p := intProfile()
	p.PowerFactor = 3
	p.ILP = 4
	g, err := NewGenerator(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Sample(0)
	for k, v := range s.Activity {
		if v > 1 {
			t.Errorf("activity[%d] = %v exceeds 1 under extreme PowerFactor", k, v)
		}
	}
}
