// Package poly implements real-coefficient polynomials and complex root
// finding. It is the numerical substrate for the control package's pole
// and stability analysis — the role MATLAB's root-locus tooling plays in
// the paper (§4.1).
package poly

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a polynomial with real coefficients, stored lowest degree
// first: P(x) = C[0] + C[1]·x + C[2]·x² + …
type Poly struct {
	C []float64
}

// New creates a polynomial from coefficients ordered lowest degree
// first. Trailing zero (highest-degree) coefficients are trimmed.
func New(coeffs ...float64) Poly {
	p := Poly{C: append([]float64(nil), coeffs...)}
	return p.trim()
}

// FromRoots builds the monic polynomial with the given real roots.
func FromRoots(roots ...float64) Poly {
	p := New(1)
	for _, r := range roots {
		p = p.Mul(New(-r, 1))
	}
	return p
}

func (p Poly) trim() Poly {
	n := len(p.C)
	for n > 1 && p.C[n-1] == 0 {
		n--
	}
	p.C = p.C[:n]
	return p
}

// Degree returns the polynomial degree. The zero polynomial has degree 0.
func (p Poly) Degree() int {
	if len(p.C) == 0 {
		return 0
	}
	return len(p.C) - 1
}

// IsZero reports whether all coefficients are zero.
func (p Poly) IsZero() bool {
	for _, c := range p.C {
		if c != 0 {
			return false
		}
	}
	return true
}

// Eval evaluates the polynomial at real x using Horner's method.
func (p Poly) Eval(x float64) float64 {
	var v float64
	for i := len(p.C) - 1; i >= 0; i-- {
		v = v*x + p.C[i]
	}
	return v
}

// EvalC evaluates the polynomial at complex z.
func (p Poly) EvalC(z complex128) complex128 {
	var v complex128
	for i := len(p.C) - 1; i >= 0; i-- {
		v = v*z + complex(p.C[i], 0)
	}
	return v
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p.C)
	if len(q.C) > n {
		n = len(q.C)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(p.C) {
			out[i] += p.C[i]
		}
		if i < len(q.C) {
			out[i] += q.C[i]
		}
	}
	return Poly{C: out}.trim()
}

// Sub returns p − q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Scale(-1)) }

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	out := make([]float64, len(p.C))
	for i, c := range p.C {
		out[i] = k * c
	}
	return Poly{C: out}.trim()
}

// Mul returns p·q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return New(0)
	}
	out := make([]float64, len(p.C)+len(q.C)-1)
	for i, a := range p.C {
		if a == 0 {
			continue
		}
		for j, b := range q.C {
			out[i+j] += a * b
		}
	}
	return Poly{C: out}.trim()
}

// Derivative returns dp/dx.
func (p Poly) Derivative() Poly {
	if len(p.C) <= 1 {
		return New(0)
	}
	out := make([]float64, len(p.C)-1)
	for i := 1; i < len(p.C); i++ {
		out[i-1] = float64(i) * p.C[i]
	}
	return Poly{C: out}.trim()
}

// String renders the polynomial in conventional descending order.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for i := len(p.C) - 1; i >= 0; i-- {
		c := p.C[i]
		if c == 0 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, fmt.Sprintf("%g", c))
		case 1:
			parts = append(parts, fmt.Sprintf("%g·x", c))
		default:
			parts = append(parts, fmt.Sprintf("%g·x^%d", c, i))
		}
	}
	return strings.Join(parts, " + ")
}

// Roots returns all complex roots of the polynomial using the
// Durand–Kerner (Weierstrass) simultaneous iteration. Results are
// unordered. Returns nil for constant polynomials.
func (p Poly) Roots() []complex128 {
	p = p.trim()
	deg := p.Degree()
	if deg == 0 {
		return nil
	}
	if deg == 1 {
		// a + b·x = 0
		return []complex128{complex(-p.C[0]/p.C[1], 0)}
	}
	if deg == 2 {
		return quadraticRoots(p.C[0], p.C[1], p.C[2])
	}
	// Normalize to monic form for the iteration.
	lead := p.C[deg]
	monic := make([]complex128, deg+1)
	for i, c := range p.C {
		monic[i] = complex(c/lead, 0)
	}
	evalMonic := func(z complex128) complex128 {
		var v complex128
		for i := deg; i >= 0; i-- {
			v = v*z + monic[i]
		}
		return v
	}
	// Initial guesses on a spiral that is neither real nor a root of
	// unity pattern, per the standard Durand–Kerner setup.
	roots := make([]complex128, deg)
	seed := complex(0.4, 0.9)
	roots[0] = seed
	for i := 1; i < deg; i++ {
		roots[i] = roots[i-1] * seed
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := range roots {
			num := evalMonic(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb a collision and continue.
				roots[i] += complex(1e-6, 1e-6)
				continue
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < 1e-13 {
			break
		}
	}
	// Snap tiny imaginary parts of (near-)real roots to the real axis so
	// downstream stability checks are not fooled by iteration noise.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(1+math.Abs(real(r))) {
			roots[i] = complex(real(r), 0)
		}
	}
	return roots
}

func quadraticRoots(c0, c1, c2 float64) []complex128 {
	disc := c1*c1 - 4*c2*c0
	if disc >= 0 {
		sq := math.Sqrt(disc)
		// Numerically stable form: compute the larger-magnitude root
		// first, derive the other from the product of roots.
		var r1 float64
		if c1 >= 0 {
			r1 = (-c1 - sq) / (2 * c2)
		} else {
			r1 = (-c1 + sq) / (2 * c2)
		}
		var r2 float64
		if r1 != 0 {
			r2 = (c0 / c2) / r1
		} else {
			r2 = -c1 / c2
		}
		return []complex128{complex(r1, 0), complex(r2, 0)}
	}
	sq := math.Sqrt(-disc)
	re := -c1 / (2 * c2)
	im := sq / (2 * c2)
	return []complex128{complex(re, im), complex(re, -im)}
}
