package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewTrimsTrailingZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -3, 2) // 1 - 3x + 2x²
	cases := map[float64]float64{0: 1, 1: 0, 0.5: 0, 2: 3}
	for x, want := range cases {
		if got := p.Eval(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	p := New(1, 2, 3)
	q := New(4, 5)
	sum := p.Add(q)
	if got := sum.Eval(2); got != p.Eval(2)+q.Eval(2) {
		t.Errorf("Add mismatch: %v", got)
	}
	diff := p.Sub(q)
	if got := diff.Eval(3); got != p.Eval(3)-q.Eval(3) {
		t.Errorf("Sub mismatch: %v", got)
	}
	if got := p.Scale(-2).Eval(1.5); got != -2*p.Eval(1.5) {
		t.Errorf("Scale mismatch: %v", got)
	}
}

func TestSubCancellationTrims(t *testing.T) {
	p := New(1, 2, 3)
	d := p.Sub(p)
	if !d.IsZero() {
		t.Errorf("p - p = %v, want zero", d)
	}
	if d.Degree() != 0 {
		t.Errorf("zero poly degree = %d, want 0", d.Degree())
	}
}

func TestMul(t *testing.T) {
	// (1+x)(1-x) = 1 - x²
	p := New(1, 1).Mul(New(1, -1))
	want := New(1, 0, -1)
	if len(p.C) != len(want.C) {
		t.Fatalf("coeff count %d, want %d", len(p.C), len(want.C))
	}
	for i := range p.C {
		if p.C[i] != want.C[i] {
			t.Errorf("coeff %d = %v, want %v", i, p.C[i], want.C[i])
		}
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 0, 2) // 5 + 3x + 2x³
	d := p.Derivative()  // 3 + 6x²
	if got := d.Eval(2); got != 27 {
		t.Errorf("derivative Eval(2) = %v, want 27", got)
	}
	if !New(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestFromRoots(t *testing.T) {
	p := FromRoots(1, -2, 3)
	for _, r := range []float64{1, -2, 3} {
		if v := p.Eval(r); math.Abs(v) > 1e-12 {
			t.Errorf("Eval(root %v) = %v, want 0", r, v)
		}
	}
	if p.Degree() != 3 {
		t.Errorf("degree = %d, want 3", p.Degree())
	}
}

func TestQuadraticRootsReal(t *testing.T) {
	p := New(6, -5, 1) // (x-2)(x-3)
	roots := p.Roots()
	got := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(got)
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("roots = %v, want [2 3]", got)
	}
}

func TestQuadraticRootsComplex(t *testing.T) {
	p := New(1, 0, 1) // x² + 1
	roots := p.Roots()
	for _, r := range roots {
		if math.Abs(real(r)) > 1e-12 || math.Abs(math.Abs(imag(r))-1) > 1e-12 {
			t.Errorf("root %v, want ±i", r)
		}
	}
}

func TestLinearRoot(t *testing.T) {
	roots := New(-6, 2).Roots() // 2x - 6
	if len(roots) != 1 || math.Abs(real(roots[0])-3) > 1e-12 {
		t.Errorf("roots = %v, want [3]", roots)
	}
}

func TestConstantHasNoRoots(t *testing.T) {
	if r := New(5).Roots(); r != nil {
		t.Errorf("constant roots = %v, want nil", r)
	}
}

func TestDurandKernerHighDegree(t *testing.T) {
	want := []float64{-4, -1.5, 0.5, 2, 7}
	p := FromRoots(want...)
	roots := p.Roots()
	if len(roots) != len(want) {
		t.Fatalf("got %d roots, want %d", len(roots), len(want))
	}
	got := make([]float64, len(roots))
	for i, r := range roots {
		if math.Abs(imag(r)) > 1e-6 {
			t.Errorf("root %v has spurious imaginary part", r)
		}
		got[i] = real(r)
	}
	sort.Float64s(got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Errorf("root %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRootsComplexConjugatePairs(t *testing.T) {
	// (x²+2x+5)(x-1): roots -1±2i, 1
	p := New(5, 2, 1).Mul(New(-1, 1))
	roots := p.Roots()
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(roots))
	}
	for _, r := range roots {
		if v := cmplx.Abs(p.EvalC(r)); v > 1e-8 {
			t.Errorf("|p(%v)| = %g, not a root", r, v)
		}
	}
}

// Property: every value returned by Roots evaluates to ~0, for random
// polynomials built from random real roots.
func TestRootsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		rs := make([]float64, n)
		for i := range rs {
			rs[i] = math.Round((rng.Float64()*10-5)*4) / 4
			// Keep roots separated to avoid ill-conditioned clusters.
			for j := 0; j < i; j++ {
				if math.Abs(rs[i]-rs[j]) < 0.5 {
					rs[i] += 0.7
					j = -1
				}
			}
		}
		p := FromRoots(rs...)
		scale := 1 + math.Abs(p.C[len(p.C)-1])
		for _, r := range p.Roots() {
			if cmplx.Abs(p.EvalC(r))/scale > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if s := New(0).String(); s != "0" {
		t.Errorf("zero poly string = %q", s)
	}
	if s := New(1, 0, 2).String(); s != "2·x^2 + 1" {
		t.Errorf("string = %q", s)
	}
}
