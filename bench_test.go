package multitherm

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run `go test -bench . -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out. Benchmarks use
// shortened simulations so a full -bench pass stays tractable; the
// cmd/sweep binary runs the same experiments at full 0.5 s fidelity.

import (
	"testing"

	"multitherm/internal/control"
	"multitherm/internal/core"
	"multitherm/internal/experiments"
	"multitherm/internal/floorplan"
	"multitherm/internal/sensor"
	"multitherm/internal/sim"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// benchOptions are the reduced-fidelity options used by table/figure
// regeneration benches.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.SimTime = 0.05
	for _, n := range []string{"workload1", "workload7", "workload12"} {
		m, err := workload.MixByName(n)
		if err != nil {
			panic(err)
		}
		o.Workloads = append(o.Workloads, m)
	}
	return o
}

func benchArtifact(b *testing.B, name string) {
	b.Helper()
	r, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Render()
	}
}

// --- one bench per paper table and figure ---

func BenchmarkTable1(b *testing.B)      { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)      { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)      { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B)      { benchArtifact(b, "table4") }
func BenchmarkPIAnalysis(b *testing.B)  { benchArtifact(b, "pi") }
func BenchmarkFig3(b *testing.B)        { benchArtifact(b, "fig3") }
func BenchmarkTable5(b *testing.B)      { benchArtifact(b, "table5") }
func BenchmarkFig5(b *testing.B)        { benchArtifact(b, "fig5") }
func BenchmarkTable6(b *testing.B)      { benchArtifact(b, "table6") }
func BenchmarkTable7(b *testing.B)      { benchArtifact(b, "table7") }
func BenchmarkFig7(b *testing.B)        { benchArtifact(b, "fig7") }
func BenchmarkTable8(b *testing.B)      { benchArtifact(b, "table8") }
func BenchmarkSensitivity(b *testing.B) { benchArtifact(b, "sensitivity") }
func BenchmarkDutyValidity(b *testing.B) {
	benchArtifact(b, "dutyvalid")
}

// --- core kernel benches ---

// BenchmarkThermalStep measures one 28 µs transient step of the 55-node
// CMP4 RC network — the inner kernel of every simulation.
func BenchmarkThermalStep(b *testing.B) {
	m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 1.5
	}
	m.SetPower(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(control.PaperSamplePeriod)
	}
}

// BenchmarkThermalStepExpm measures the same 28 µs step through the
// exact ZOH discretization (T ← Φ·T + Ψ·u, no truncation error): one
// fused pass over the dense packed propagator instead of the four RK4
// stages. Compare against BenchmarkThermalStep for the speedup; power
// is held constant here, so the memoized input term Ψ·P + ψ_amb is
// reused across ticks just as in a fixed-power thermal study.
func BenchmarkThermalStepExpm(b *testing.B) {
	m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 1.5
	}
	m.SetPower(p)
	if err := m.UseExact(control.PaperSamplePeriod); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(control.PaperSamplePeriod)
	}
}

// BenchmarkThermalStepExpmDirty is the same exact step with SetPower
// invalidating the memoized input term every tick — the simulator's
// calling pattern under leakage-temperature feedback (both the Φ pass
// and the Ψ pass run each iteration).
func BenchmarkThermalStepExpmDirty(b *testing.B) {
	m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 1.5
	}
	if err := m.UseExact(control.PaperSamplePeriod); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetPower(p)
		m.Step(control.PaperSamplePeriod)
	}
}

// benchThermalStepBatch measures one lockstep batched tick over k
// lanes in the simulator's calling pattern (every lane's power set
// each tick, so the fused Ψ panel pass and the Φ panel pass both run).
// ns/op is the whole batched tick; the ns/lane metric divides by k for
// direct comparison against BenchmarkThermalStepExpmDirty, which is
// the same work at k=1 through the unbatched path.
func benchThermalStepBatch(b *testing.B, k int) {
	models := make([]*thermal.Model, k)
	powers := make([]units.PowerVec, k)
	for l := range models {
		m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		p := make(units.PowerVec, m.NumBlocks())
		for i := range p {
			p[i] = 1.5 + 0.1*float64(l)
		}
		models[l] = m
		powers[l] = p
	}
	batch, err := thermal.NewBatch(models, control.PaperSamplePeriod)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l, m := range models {
			m.SetPower(powers[l])
		}
		batch.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/lane")
}

func BenchmarkThermalStepBatch1(b *testing.B)  { benchThermalStepBatch(b, 1) }
func BenchmarkThermalStepBatch8(b *testing.B)  { benchThermalStepBatch(b, 8) }
func BenchmarkThermalStepBatch32(b *testing.B) { benchThermalStepBatch(b, 32) }

// benchGridStep measures one exact tick on a generated Rows x Cols
// grid in the simulator's dirty-power calling pattern (SetPower every
// tick). The 2x2 grid (26 nodes) runs the dense packed path; 4x4, 8x8,
// and 16x16 (74/266/1034 nodes) run the sparse Krylov path. bench.sh
// fits ln(ns) against ln(cores) across the four sizes into
// step_cost_exponent — the scaling claim that per-step cost tracks
// nonzeros, not N².
func benchGridStep(b *testing.B, rows, cols int) {
	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: rows, Cols: cols,
		Pattern: floorplan.PatternMixedRows,
		Cooling: floorplan.CoolingEdgeBoost,
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := thermal.New(fp, thermal.FitParams(fp))
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 1.0 + 0.1*float64(i%5)
	}
	if err := m.UseExact(control.PaperSamplePeriod); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetPower(p)
		m.Step(control.PaperSamplePeriod)
	}
}

func BenchmarkGridStepN4(b *testing.B)   { benchGridStep(b, 2, 2) }
func BenchmarkGridStepN16(b *testing.B)  { benchGridStep(b, 4, 4) }
func BenchmarkGridStepN64(b *testing.B)  { benchGridStep(b, 8, 8) }
func BenchmarkGridStepN256(b *testing.B) { benchGridStep(b, 16, 16) }

// BenchmarkThermalStepFlat isolates the flattened-CSR RK4 kernel at its
// raw stability-bound step (no substep loop), so improvements to the
// integrator itself show without Step's ceil/substep bookkeeping.
func BenchmarkThermalStepFlat(b *testing.B) {
	m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 1.5
	}
	m.SetPower(p)
	h := m.MaxStableStep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(h)
	}
}

// benchSweepWorkers runs a fixed specs×workloads study through the
// work-stealing scheduler at the given worker count; compare ns/op
// across BenchmarkSweepWorkers{1,2,4,8} to see the scaling curve of
// the sweep engine on this machine in one `go test -bench
// SweepWorkers` invocation. Scaling past GOMAXPROCS is flat by
// construction — the goroutines multiplex onto the same Ps — so on a
// pinned or single-core machine only the workers1 vs workers2 pair
// shows contention overhead, not speedup.
func benchSweepWorkers(b *testing.B, workers int) {
	opt := benchOptions()
	opt.Parallelism = workers
	r, err := experiments.Find("table8")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Render()
	}
}

func BenchmarkSweepWorkers1(b *testing.B) { benchSweepWorkers(b, 1) }
func BenchmarkSweepWorkers2(b *testing.B) { benchSweepWorkers(b, 2) }
func BenchmarkSweepWorkers4(b *testing.B) { benchSweepWorkers(b, 4) }
func BenchmarkSweepWorkers8(b *testing.B) { benchSweepWorkers(b, 8) }

// BenchmarkSweepBatched runs the same fixed study at several lockstep
// batch widths with one worker, so the sub-bench ratios isolate what
// batching alone buys the sweep engine (BenchmarkSweepParallel covers
// the worker axis).
func BenchmarkSweepBatched(b *testing.B) {
	for _, width := range []int{1, 8} {
		b.Run("batch"+itoa(int64(width)), func(b *testing.B) {
			opt := benchOptions()
			opt.Parallelism = 1
			opt.Batch = width
			r, err := experiments.Find("table8")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Run(opt)
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Render()
			}
		})
	}
}

// BenchmarkThermalSteadyState measures the LU-based equilibrium solve.
func BenchmarkThermalSteadyState(b *testing.B) {
	m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := make(units.PowerVec, m.NumBlocks())
	p[3] = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPIStep measures the discrete PI controller's per-sample cost.
func BenchmarkPIStep(b *testing.B) {
	rt := control.NewPaperPIRuntime(81.8)
	for i := 0; i < b.N; i++ {
		rt.Step(units.Celsius(80 + float64(i%7)))
	}
}

// BenchmarkSimulatorTick measures full end-to-end simulation throughput
// (ticks/second of the whole Figure 2 loop) via a fixed 10 ms run.
func BenchmarkSimulatorTick(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.SimTime = 0.01
	mix, err := workload.MixByName("workload7")
	if err != nil {
		b.Fatal(err)
	}
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.New(cfg, mix, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// ablationRun runs workload7 for 50 ms under a modified configuration
// and reports achieved BIPS as a custom metric.
func ablationRun(b *testing.B, mutate func(*sim.Config), spec core.PolicySpec) {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.SimTime = 0.05
	if mutate != nil {
		mutate(&cfg)
	}
	mix, err := workload.MixByName("workload7")
	if err != nil {
		b.Fatal(err)
	}
	var bips float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.New(cfg, mix, spec)
		if err != nil {
			b.Fatal(err)
		}
		m, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		bips = float64(m.BIPS())
	}
	b.ReportMetric(bips, "BIPS")
}

// BenchmarkAblationControllerPI vs. a crude bang-bang alternative: the
// stop-go rows of the taxonomy ARE the bang-bang ablation; these two
// benches make the comparison directly visible as custom metrics.
func BenchmarkAblationControllerPI(b *testing.B) {
	ablationRun(b, nil, core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed})
}

func BenchmarkAblationControllerBangBang(b *testing.B) {
	ablationRun(b, nil, core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed})
}

// BenchmarkAblationMigrationEpoch sweeps the OS migration epoch.
func BenchmarkAblationMigrationEpoch(b *testing.B) {
	for _, epoch := range []units.Seconds{2e-3, 10e-3, 50e-3} {
		b.Run(formatMS(float64(epoch)), func(b *testing.B) {
			ablationRun(b, func(c *sim.Config) { c.MigrationEpoch = epoch },
				core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed, Migration: core.CounterMigration})
		})
	}
}

// BenchmarkAblationMigrationPenalty sweeps the context-switch cost.
func BenchmarkAblationMigrationPenalty(b *testing.B) {
	for _, pen := range []units.Seconds{10e-6, 100e-6, 1e-3} {
		b.Run(formatUS(float64(pen)), func(b *testing.B) {
			ablationRun(b, func(c *sim.Config) { c.MigrationPenalty = pen },
				core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration})
		})
	}
}

// BenchmarkAblationVoltageFloor compares the paper's pure-cubic DVFS
// power model against a realistic regulator floor.
func BenchmarkAblationVoltageFloor(b *testing.B) {
	for _, floor := range []float64{0, 0.7} {
		name := "cubic"
		if floor > 0 {
			name = "vfloor0.7"
		}
		b.Run(name, func(b *testing.B) {
			ablationRun(b, func(c *sim.Config) { c.Power.VFloor = floor },
				core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed})
		})
	}
}

// BenchmarkAblationSensorNoise degrades the sensors that feed
// sensor-based migration.
func BenchmarkAblationSensorNoise(b *testing.B) {
	// Sensor parameters live on the bank built inside the runner;
	// emulate degradation through quantization-equivalent threshold
	// margin instead.
	for _, margin := range []units.Celsius{0.3, 1.0, 2.0} {
		b.Run(formatC(float64(margin)), func(b *testing.B) {
			ablationRun(b, func(c *sim.Config) { c.Policy.TripMarginC = margin },
				core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed, Migration: core.SensorMigration})
		})
	}
}

// BenchmarkAblationDiscretization compares c2d methods on control cost.
func BenchmarkAblationDiscretization(b *testing.B) {
	for _, method := range []control.DiscretizeMethod{control.ForwardEuler, control.BackwardEuler, control.Tustin} {
		b.Run(method.String(), func(b *testing.B) {
			law := control.C2DPI(control.PaperKp, control.PaperKi, control.PaperSamplePeriod, method)
			rt := control.NewPIRuntime(law, control.DefaultPILimits(), 81.8)
			temp := 60.0
			var worst float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := float64(rt.Step(units.Celsius(temp)))
				eq := 45 + 52*u*u*u
				temp += (eq - temp) * float64(control.PaperSamplePeriod) / 25e-3
				if temp > worst {
					worst = temp
				}
			}
			b.ReportMetric(worst, "peakC")
		})
	}
}

// BenchmarkAblationThermalStepSize measures integrator cost vs step.
func BenchmarkAblationThermalStepSize(b *testing.B) {
	for _, dt := range []units.Seconds{7e-6, 28e-6, 112e-6} {
		b.Run(formatUS(float64(dt)), func(b *testing.B) {
			m, err := thermal.New(floorplan.CMP4(), thermal.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			p := make(units.PowerVec, m.NumBlocks())
			for i := range p {
				p[i] = 1.5
			}
			m.SetPower(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(dt)
			}
		})
	}
}

// BenchmarkSensorRead measures the hottest-of-bank reduction feeding
// every controller decision.
func BenchmarkSensorRead(b *testing.B) {
	fp := floorplan.CMP4()
	bank, err := sensor.CoreHotspots(fp)
	if err != nil {
		b.Fatal(err)
	}
	temps := make(units.TempVec, len(fp.Blocks))
	for i := range temps {
		temps[i] = 70 + float64(i%9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Hottest(temps, int64(i))
	}
}

func formatMS(v float64) string { return formatF(v*1e3) + "ms" }
func formatUS(v float64) string { return formatF(v*1e6) + "us" }
func formatC(v float64) string  { return formatF(v) + "C" }

func formatF(v float64) string {
	if v == float64(int64(v)) {
		return itoa(int64(v))
	}
	return itoa(int64(v*10)) + "e-1"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
